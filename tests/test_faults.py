"""Fault injection and robustness scoring (:mod:`repro.sim.faults`).

The contracts under test:

* **Determinism** — same ``(seed, plan, fault model)`` reproduces the
  :class:`RobustnessReport` bit-identically, serial or under any ``jobs``
  fan-out (seeded per-scenario draws + submission-order merge).
* **Attribution** — every scenario outcome decomposes exactly as
  ``latency == nominal + compute_delay + link_delay + recovery_delay``.
* **Monotonicity** — link slowdowns can never make an iteration faster
  (seeded property over many scenarios).
* **Zero faults** — the empty scenario is a pass-through of the stock
  engine (the frozen-legacy half of this lives in
  ``test_golden_engine.py``).
"""

from __future__ import annotations

import json

import pytest

from repro import EventDrivenSimulator, PrimeParOptimizer, ValidationError
from repro.cluster.profiler import FabricProfiler
from repro.cluster.topology import v100_cluster
from repro.graph.models import OPT_6_7B
from repro.graph.transformer import build_block_graph
from repro.sim.faults import (
    DegradedLink,
    FaultModel,
    FaultScenario,
    FaultyKernelGraph,
    NicFlap,
    RecoveryModel,
    RobustnessReport,
    Straggler,
    evaluate_robustness,
    pipeline_robustness,
    robust_search,
    scenario_seed,
    simulate_scenario,
)

MIXED = FaultModel.from_spec(
    "straggler=0.5:1.7,degrade=0.4:0.5,flap=0.5:0.002:0.25,outage=0.2"
)


@pytest.fixture(scope="module")
def setting():
    """A two-node cluster (so link faults bite) with a searched plan."""
    profiler = FabricProfiler(v100_cluster(4, gpus_per_node=2))
    graph = build_block_graph(OPT_6_7B.block_shape(batch=8))
    plan = PrimeParOptimizer(profiler).optimize(graph, n_layers=4).plan
    return profiler, graph, plan


class TestScenarioSampling:
    def test_scenario_seed_is_pure(self):
        assert scenario_seed(3, 7) == scenario_seed(3, 7)
        assert scenario_seed(3, 7) != scenario_seed(3, 8)
        assert scenario_seed(4, 7) != scenario_seed(3, 7)

    def test_sampling_is_deterministic(self, setting):
        profiler, _, _ = setting
        a = MIXED.scenarios(profiler.topology, 8, seed=5, horizon=0.5)
        b = MIXED.scenarios(profiler.topology, 8, seed=5, horizon=0.5)
        assert a == b
        assert [s.to_json() for s in a] == [s.to_json() for s in b]

    def test_different_seeds_differ(self, setting):
        profiler, _, _ = setting
        a = MIXED.scenarios(profiler.topology, 8, seed=5, horizon=0.5)
        b = MIXED.scenarios(profiler.topology, 8, seed=6, horizon=0.5)
        assert [s.to_json() for s in a] != [s.to_json() for s in b]

    def test_zero_model_samples_nominal(self, setting):
        profiler, _, _ = setting
        model = FaultModel.from_spec("")
        assert model.is_zero
        for scenario in model.scenarios(profiler.topology, 4, 0, 0.5):
            assert scenario.is_nominal

    def test_scenario_round_trip(self, setting):
        profiler, _, _ = setting
        for scenario in MIXED.scenarios(profiler.topology, 6, 1, 0.5):
            payload = json.loads(json.dumps(scenario.to_json()))
            assert FaultScenario.from_json(payload) == scenario


class TestFaultModelSpec:
    def test_from_spec_parses_all_clauses(self):
        model = FaultModel.from_spec(
            "straggler=0.2:1.8,degrade=0.3:0.5,flap=0.5:0.002:0.25,"
            "outage=0.05,ckpt=32,restart=60,replan=9"
        )
        assert model.straggler_rate == 0.2
        assert model.straggler_slowdown == 1.8
        assert model.degrade_rate == 0.3
        assert model.degrade_factor == 0.5
        assert model.flap_rate == 0.5
        assert model.flap_duration == 0.002
        assert model.flap_reroute == 0.25
        assert model.outage_rate == 0.05
        assert model.recovery == RecoveryModel(32, 60.0, 9.0)

    def test_round_trip_and_canonical(self):
        payload = json.loads(json.dumps(MIXED.to_json()))
        clone = FaultModel.from_json(payload)
        assert clone == MIXED
        assert clone.canonical() == MIXED.canonical()

    def test_bad_spec_raises_with_field(self):
        with pytest.raises(ValidationError):
            FaultModel.from_spec("straggler=0.2:0.5")  # slowdown < 1
        with pytest.raises(ValidationError):
            FaultModel.from_spec("nonsense=1")
        with pytest.raises(ValidationError):
            FaultModel.from_json({"straggler_rate": 0.1, "typo_key": 1})


class TestAttribution:
    def test_identity_holds_exactly(self, setting):
        profiler, graph, plan = setting
        nominal = EventDrivenSimulator(profiler, use_disk_cache=False)
        nominal_latency = nominal.run_model(graph, plan, 8, 4).latency
        for scenario in MIXED.scenarios(
            profiler.topology, 8, seed=2, horizon=nominal_latency
        ):
            outcome = simulate_scenario(
                profiler, graph, plan, 8, 4, scenario,
                MIXED.recovery, nominal_latency,
            )
            assert outcome.latency == (
                outcome.nominal_latency + outcome.compute_delay
                + outcome.link_delay + outcome.recovery_delay
            )
            assert outcome.compute_delay >= 0.0
            # Flap scenarios force a full multi-layer replay whose float
            # accumulation differs from the spliced nominal by at most an
            # ulp; the identity above still holds exactly.
            assert outcome.link_delay >= -1e-9
            assert outcome.recovery_delay >= 0.0


class TestLinkSlowdownsNeverHelp:
    """Seeded property: degraded links can only increase iteration time."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_degraded_links_monotone(self, setting, seed):
        profiler, graph, plan = setting
        nominal = EventDrivenSimulator(
            profiler, use_disk_cache=False
        ).run_model(graph, plan, 8, 4).latency
        link_only = FaultModel.from_spec("degrade=1.0:0.4")
        for scenario in link_only.scenarios(
            profiler.topology, 4, seed=seed, horizon=nominal
        ):
            outcome = simulate_scenario(
                profiler, graph, plan, 8, 4, scenario,
                link_only.recovery, nominal,
            )
            assert outcome.latency >= nominal
            if scenario.degraded_links:
                assert outcome.latency > nominal

    def test_flap_stall_delays_completion(self):
        """A hard NIC outage mid-iteration parks in-flight ring flows.

        Flaps modulate fabric-flow capacity, so the plan must actually
        push flows through the flapped NIC pool — a cross-node P2x2 ring
        (the golden suite's contended case), not a collective-only plan.
        """
        from repro.core.dims import Dim
        from repro.core.spec import PartitionSpec
        from repro.graph.graph import ComputationGraph
        from repro.graph.operators import OpKind, OperatorSpec

        fc = OperatorSpec(
            name="fc",
            kind=OpKind.LINEAR,
            dim_axes={
                Dim.B: ("batch",),
                Dim.M: ("seq",),
                Dim.K: ("hidden",),
                Dim.N: ("ffn",),
            },
            axis_sizes={"batch": 2, "seq": 64, "hidden": 8192, "ffn": 8192},
        )
        graph = ComputationGraph(nodes=[fc], edges=[])
        plan = {"fc": PartitionSpec.from_string("P2x2", 2)}
        profiler = FabricProfiler(v100_cluster(4, gpus_per_node=2))
        stock = EventDrivenSimulator(profiler, use_disk_cache=False)
        report = stock.run_model(graph, plan, 2, 1)
        assert report.breakdown.get("ring-exposed", 0.0) > 0
        nominal = report.latency
        scenario = FaultScenario(
            index=0, seed=0,
            nic_flaps=(NicFlap(node=0, start=nominal * 0.25,
                               duration=nominal, reroute_factor=0.0),),
        )
        outcome = simulate_scenario(
            profiler, graph, plan, 2, 1, scenario,
            RecoveryModel(), nominal,
        )
        assert outcome.latency > nominal
        assert outcome.link_delay > 0.0


class TestDeterminism:
    def test_serial_equals_parallel_bit_identical(self, setting):
        profiler, graph, plan = setting
        serial = evaluate_robustness(
            profiler, graph, plan, 8, 4, MIXED,
            scenarios=8, seed=3, jobs=1,
        )
        parallel = evaluate_robustness(
            profiler, graph, plan, 8, 4, MIXED,
            scenarios=8, seed=3, jobs=2,
        )
        assert serial == parallel
        assert json.dumps(serial.to_json(), sort_keys=True) == json.dumps(
            parallel.to_json(), sort_keys=True
        )

    def test_zero_fault_report_matches_stock_engine(self, setting):
        profiler, graph, plan = setting
        report = evaluate_robustness(
            profiler, graph, plan, 8, 4, FaultModel.from_spec(""),
            scenarios=3, seed=0,
        )
        stock = EventDrivenSimulator(profiler).run_model(graph, plan, 8, 4)
        assert report.nominal_latency == stock.latency
        assert report.p50 == stock.latency
        assert report.p99 == stock.latency
        assert report.attribution == {
            "compute": 0.0, "link": 0.0, "recovery": 0.0
        }

    def test_report_round_trip(self, setting):
        profiler, graph, plan = setting
        report = evaluate_robustness(
            profiler, graph, plan, 8, 4, MIXED, scenarios=4, seed=1
        )
        payload = json.loads(json.dumps(report.to_json()))
        assert RobustnessReport.from_json(payload) == report


class TestZeroFaultGraphPassThrough:
    def test_empty_scenario_is_identity(self, setting):
        profiler, graph, plan = setting
        topology = profiler.topology
        stock = EventDrivenSimulator(profiler, use_disk_cache=False)
        faulty = EventDrivenSimulator(
            profiler,
            graph_factory=lambda: FaultyKernelGraph(
                FaultScenario(index=0, seed=0), topology
            ),
            use_disk_cache=False,
        )
        a = stock.run_model(graph, plan, 8, 4)
        b = faulty.run_model(graph, plan, 8, 4)
        assert a == b

    def test_straggler_slows_only_compute(self, setting):
        profiler, graph, plan = setting
        topology = profiler.topology
        scenario = FaultScenario(
            index=0, seed=0, stragglers=(Straggler(device=0, slowdown=2.0),)
        )
        faulty = EventDrivenSimulator(
            profiler,
            graph_factory=lambda: FaultyKernelGraph(scenario, topology),
            use_disk_cache=False,
        )
        stock = EventDrivenSimulator(profiler, use_disk_cache=False)
        assert (
            faulty.run_model(graph, plan, 8, 4).latency
            > stock.run_model(graph, plan, 8, 4).latency
        )

    def test_degraded_link_scales_capacity(self, setting):
        profiler, _, _ = setting
        topology = profiler.topology
        scenario = FaultScenario(
            index=0, seed=0,
            degraded_links=(DegradedLink(node=0, factor=0.5),),
        )
        kg = FaultyKernelGraph(scenario, topology)
        link = kg._link("nic:node0", 100.0)
        assert link.capacity == pytest.approx(50.0)
        full = kg._link("nic:node1", 100.0)
        assert full.capacity == pytest.approx(100.0)


class TestRobustSearch:
    def test_portfolio_ranked_and_serializable(self, setting):
        profiler, graph, _ = setting
        result = robust_search(
            profiler, graph, global_batch=8, n_layers=4,
            fault_model=MIXED, objective="p99", scenarios=4, seed=0,
        )
        assert result.candidates
        scores = [c.score for c in result.candidates]
        assert scores == sorted(scores)
        assert result.best.label == result.candidates[0].label
        doc = json.loads(json.dumps(result.to_json()))
        assert doc["kind"] == "robust_search"
        assert doc["best"] == result.best.label

    def test_objective_validation(self, setting):
        profiler, graph, plan = setting
        report = evaluate_robustness(
            profiler, graph, plan, 8, 4, MIXED, scenarios=2, seed=0
        )
        with pytest.raises(ValidationError):
            report.score("p42")
        blended = report.score("blend", blend=0.25)
        assert blended == pytest.approx(
            0.75 * report.nominal_latency + 0.25 * report.p99
        )


class TestPipelineRobustness:
    def test_closed_form_reports_deterministic(self):
        from repro import Planner3D

        planner = Planner3D(OPT_6_7B, n_devices=8, global_batch=8)
        ranked = planner.sweep_robust(
            "megatron", MIXED, objective="p99", scenarios=4, seed=0
        )
        assert ranked
        scores = [score for _, _, score in ranked]
        assert scores == sorted(scores)
        again = planner.sweep_robust(
            "megatron", MIXED, objective="p99", scenarios=4, seed=0
        )
        assert [
            (str(r.config), report.to_json(), score)
            for r, report, score in ranked
        ] == [
            (str(r.config), report.to_json(), score)
            for r, report, score in again
        ]

    def test_pipeline_report_attribution_identity(self):
        from repro import Planner3D

        planner = Planner3D(OPT_6_7B, n_devices=8, global_batch=8)
        result = planner.sweep("megatron")[0]
        report = pipeline_robustness(
            result, v100_cluster(8), MIXED, scenarios=8, seed=1
        )
        for outcome in report.outcomes:
            assert outcome.latency == pytest.approx(
                outcome.nominal_latency + outcome.compute_delay
                + outcome.link_delay + outcome.recovery_delay
            )
