"""Indexed lazy-deletion event queue for the discrete-event engine.

The fluid-flow contention model reschedules a transfer's completion every
time its fair-share rate changes.  A plain ``heapq`` accumulates one stale
entry per reschedule and filters them with per-flow generation counters —
O(total reschedules) heap growth and churn.  :class:`IndexedEventQueue`
keeps exactly one *live* entry per slot:

* ``schedule`` pushes ``(when, seq, slot)`` and records the pair as the
  slot's live entry;
* ``reschedule`` overwrites the slot's live entry and pushes the new pair —
  the superseded heap tuple is recognised (and dropped in O(1)) when it
  surfaces, so a reschedule is O(log n) with no per-flow bookkeeping in the
  callbacks;
* ``cancel`` clears the live entry; freed slot ids are reused by later
  ``schedule`` calls, keeping the slot table dense.

Determinism contract (relied on by trace byte-stability tests): events with
equal timestamps fire in *submission order* — ``seq`` is a single monotonic
counter and every ``schedule``/``reschedule`` draws a fresh value, so a
rescheduled event orders after anything submitted earlier at the same
timestamp.  The ordering is a pure function of the call sequence; no object
identities or hash ordering are involved.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

#: One scheduled callback; ``None`` durations never enter the queue.
_Callback = Callable[[], None]


class IndexedEventQueue:
    """A binary heap of ``(when, seq, slot)`` with O(log n) reschedule.

    Attributes:
        pushes: Total heap insertions (telemetry).
        stale_drops: Superseded entries dropped on surfacing (telemetry).
    """

    __slots__ = (
        "_heap", "_seq", "_live", "_callbacks", "_free", "_next_slot",
        "pushes", "stale_drops",
    )

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = itertools.count()
        #: slot -> live ``(when, seq)`` key, or absent when cancelled/fired.
        self._live: dict = {}
        self._callbacks: dict = {}
        self._free: List[int] = []
        self._next_slot = 0
        self.pushes = 0
        self.stale_drops = 0

    def __len__(self) -> int:
        return len(self._live)

    def _claim_slot(self) -> int:
        if self._free:
            return self._free.pop()
        slot = self._next_slot
        self._next_slot += 1
        return slot

    def schedule(self, when: float, callback: _Callback) -> int:
        """Enqueue ``callback`` at ``when``; returns the slot token."""
        slot = self._claim_slot()
        key = (when, next(self._seq))
        self._live[slot] = key
        self._callbacks[slot] = callback
        heapq.heappush(self._heap, (when, key[1], slot))
        self.pushes += 1
        return slot

    def reschedule(self, slot: int, when: float) -> None:
        """Move a pending event to ``when`` (new seq: orders as a fresh
        submission among equal timestamps, matching the pre-PR engine's
        last-reschedule-wins generation semantics)."""
        if slot not in self._live:
            raise KeyError(f"slot {slot} has no pending event")
        key = (when, next(self._seq))
        self._live[slot] = key
        heapq.heappush(self._heap, (when, key[1], slot))
        self.pushes += 1

    def cancel(self, slot: int) -> None:
        """Drop a pending event; its heap entries die lazily."""
        self._live.pop(slot, None)
        self._callbacks.pop(slot, None)
        self._free.append(slot)

    def peek_time(self) -> Optional[float]:
        """Earliest live event time, or ``None`` when empty."""
        while self._heap:
            when, seq, slot = self._heap[0]
            if self._live.get(slot) == (when, seq):
                return when
            heapq.heappop(self._heap)
            self.stale_drops += 1
        return None

    def pop(self) -> Tuple[float, _Callback]:
        """Remove and return the earliest live ``(when, callback)``."""
        while self._heap:
            when, seq, slot = heapq.heappop(self._heap)
            if self._live.get(slot) == (when, seq):
                callback = self._callbacks.pop(slot)
                del self._live[slot]
                self._free.append(slot)
                return when, callback
            self.stale_drops += 1
        raise IndexError("pop from an empty event queue")
