"""Disk memoization of simulated iteration reports.

A simulated iteration is a pure function of (graph, plan, batch, cluster,
cost-model parameters), so its :class:`~repro.sim.executor.IterationReport`
can be keyed by a content hash and persisted through :mod:`repro.cache` —
the same store (and ``PRIMEPAR_CACHE*`` knobs) that already memoizes
candidate sets and profiler fits.  Warm sweeps and benchmark reruns then
skip the event loop entirely; pickle round-trips every float bit-exactly,
so a cached report is indistinguishable from a fresh one.

Entries carry the telemetry the simulation would have emitted (kernel
counts, heap and rebalance tallies) so a cache hit replays the same counter
increments and a warm run's metrics snapshot stays comparable to a cold
one.  Keys are refused (``None``) for noisy profilers — their fitted models
depend on RNG draw order — and for anything :func:`repro.cache.content_key`
cannot canonically encode.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from .. import cache as diskcache
from ..obs.metrics import counter

#: Bump when report layout or engine semantics change meaning.
SIM_SCHEMA = 1

#: Cache kind for iteration reports (file prefix in the cache directory).
KIND = "simreport"


def _plan_fingerprint(plan: Mapping[str, Any]) -> Tuple:
    """A canonical, order-independent encoding of a partition plan."""
    return tuple(
        sorted((name, str(spec), spec.n_bits) for name, spec in plan.items())
    )


def report_key(
    engine: str,
    profiler,
    graph,
    plan: Mapping[str, Any],
    global_batch: int,
    n_layers: int,
    memory_model,
) -> Optional[str]:
    """Content hash for one simulated iteration, or ``None`` if uncacheable."""
    if profiler.noise != 0.0:
        return None
    try:
        return diskcache.content_key(
            KIND,
            SIM_SCHEMA,
            engine,
            tuple(graph.nodes),
            tuple(graph.edges),
            _plan_fingerprint(plan),
            int(global_batch),
            int(n_layers),
            profiler.topology,
            tuple(profiler.sizes),
            (
                type(memory_model).__qualname__,
                sorted(vars(memory_model).items()),
            ),
        )
    except TypeError:
        return None


def load(key: str, engine: str) -> Optional[Dict[str, Any]]:
    """Fetch a cached ``{"report", "spliceable", "stats"}`` entry."""
    entry = diskcache.load(KIND, key)
    hit = isinstance(entry, dict) and "report" in entry
    counter(
        "sim.report_cache", outcome="hit" if hit else "miss", engine=engine
    ).inc()
    return entry if hit else None


def store(
    key: str,
    engine: str,
    report,
    spliceable: bool,
    stats: Optional[Dict[str, float]] = None,
) -> None:
    """Persist one simulated iteration (best effort, never fatal)."""
    diskcache.store(
        KIND,
        key,
        {"report": report, "spliceable": spliceable, "stats": dict(stats or {})},
    )
    counter("sim.report_cache", outcome="store", engine=engine).inc()
