"""Ideal (zero-replication) peak-memory lower bound — paper Fig. 2(b).

The ideal scenario assumes no tensor is ever replicated: every parameter,
gradient and stashed activation lives on exactly one device, so per-device
peak memory is the global footprint divided by the device count.
"""

from __future__ import annotations

from ..core.dims import Dim
from ..graph.graph import ComputationGraph
from ..graph.operators import OpKind
from ..graph.tensors import DTYPE_BYTES


def global_footprint_bytes(graph: ComputationGraph) -> float:
    """Total unpartitioned params + grads + stash of one graph instance."""
    total = 0.0
    for node in graph.nodes:
        params = node.parameter_elements()
        total += 2 * params * node.weight_dtype_bytes  # weights + gradients
        if not node.stash_inputs:
            continue
        if node.kind is OpKind.LINEAR:
            stash = (
                node.dim_size(Dim.B) * node.dim_size(Dim.M) * node.dim_size(Dim.N)
            )
        elif node.kind is OpKind.MATMUL:
            b, m = node.dim_size(Dim.B), node.dim_size(Dim.M)
            n, k = node.dim_size(Dim.N), node.dim_size(Dim.K)
            stash = b * m * n + b * n * k
        else:
            stash = node.output_elements()
        total += stash * DTYPE_BYTES
    return total


def ideal_peak_memory(graph: ComputationGraph, n_devices: int, n_layers: int = 1) -> float:
    """Per-device peak memory with zero replication, scaled to the model."""
    return global_footprint_bytes(graph) * n_layers / n_devices
