"""Unified telemetry: metrics registry, timing spans, structured logging.

``repro.obs`` is the dependency-free observability layer under every other
subsystem (it imports nothing from the rest of the package):

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges and histograms with labels, exportable as schema-stable
  JSON and Prometheus text format.  Instrumented code reaches the *current*
  registry through :func:`counter`/:func:`gauge`/:func:`histogram`, so
  worker processes can swap in a fresh one and ship their delta back.
* :mod:`repro.obs.spans` — :func:`span`, a context manager producing nested
  wall-clock timing spans into a thread-safe :class:`SpanCollector`;
  :meth:`SpanCollector.merge` re-bases spans exported by child processes so
  ``repro.core.optimizer.parallel`` fan-out appears inside the parent's
  timeline.
* :mod:`repro.obs.logsetup` — :func:`configure_logging`, structured (plain
  or JSON-lines) logging for the ``repro`` logger tree, honouring the
  ``PRIMEPAR_LOG_LEVEL`` / ``PRIMEPAR_LOG_JSON`` environment knobs.

:func:`metrics_document` bundles the registry snapshot with every collected
span — the payload behind ``primepar ... --metrics-out`` and the
``primepar report`` subcommand.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .flight import FLIGHT_SCHEMA, FlightRecorder, process_rss_bytes
from .logsetup import configure_logging, get_logger
from .metrics import (
    MetricsRegistry,
    counter,
    delta_snapshots,
    describe,
    gauge,
    get_registry,
    histogram,
    use_registry,
)
from .quantiles import DEFAULT_QUANTILES, RollingQuantiles, quantile_label
from .reqtrace import (
    RequestTrace,
    TraceStore,
    current_trace,
    new_trace_id,
    trace_event,
    use_trace,
    valid_trace_id,
)
from .spans import Span, SpanCollector, get_collector, span, use_collector

#: Schema version of the ``--metrics-out`` / ``primepar report`` document.
METRICS_SCHEMA = 1

__all__ = [
    "DEFAULT_QUANTILES",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "RequestTrace",
    "RollingQuantiles",
    "Span",
    "SpanCollector",
    "TraceStore",
    "configure_logging",
    "counter",
    "current_trace",
    "delta_snapshots",
    "describe",
    "gauge",
    "get_collector",
    "get_logger",
    "get_registry",
    "histogram",
    "metrics_document",
    "new_trace_id",
    "process_rss_bytes",
    "quantile_label",
    "span",
    "trace_event",
    "use_collector",
    "use_registry",
    "use_trace",
    "valid_trace_id",
    "write_metrics",
]


def metrics_document(
    registry: Optional[MetricsRegistry] = None,
    collector: Optional[SpanCollector] = None,
) -> Dict[str, object]:
    """The full telemetry state as one schema-stable JSON-ready document."""
    registry = registry if registry is not None else get_registry()
    collector = collector if collector is not None else get_collector()
    document = {"schema": METRICS_SCHEMA}
    document.update(registry.snapshot())
    document["spans"] = collector.export()
    return document


def write_metrics(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    collector: Optional[SpanCollector] = None,
) -> Dict[str, object]:
    """Dump :func:`metrics_document` as JSON at ``path``; returns it."""
    document = metrics_document(registry, collector)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
    return document
