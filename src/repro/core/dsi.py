"""Dimension Slice Index (DSI) evaluation — paper Algorithm 1.

A partition plan is a sequence of basic partitions.  Walking the sequence
yields, for every training phase and every dimension, a **DSI function**
``I_X^phase(D, t)`` mapping a device id and temporal step to the slice index
of dimension ``X`` that the sub-operator ``(D, t)`` holds (paper Sec. 3.1).

Conventions (matching Alg. 1):

* A :class:`~repro.core.partitions.DimPartition` consumes one device-id bit
  and updates the partitioned dim's DSI in all three phases:
  ``I_X <- 2 I_X + d_i``.
* A :class:`~repro.core.partitions.TemporalPartition` ``P_{2^k x 2^k}``
  consumes ``2k`` interleaved bits forming square coordinates ``(r, c)`` and
  updates ``M``, ``N``, ``K`` DSIs per paper Eq. 4-6 with its own temporal
  index ``t`` in ``[0, 2^k)``.
* With several temporal primitives in one sequence, the flat temporal step is
  mixed-radix: earlier primitives are outer loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from .device import DeviceId, square_coordinates
from .dims import ALL_DIMS, ALL_PHASES, Dim, Phase
from .partitions import DimPartition, PartitionStep, Replicate, TemporalPartition


@dataclass(frozen=True)
class DsiResult:
    """DSIs of one sub-operator ``(D, t)`` in one phase."""

    phase: Phase
    values: Mapping[Dim, int]

    def __getitem__(self, dim: Dim) -> int:
        return self.values[dim]


@dataclass
class _TemporalSlot:
    """Bookkeeping for one temporal primitive within a sequence."""

    step: TemporalPartition
    start_bit: int
    index: int  # position among temporal primitives, in sequence order


class DsiEvaluator:
    """Evaluates Alg. 1 DSI functions for a fixed partition sequence.

    Args:
        steps: The partition sequence ``P``.
        n_bits: Total device-id bits of the cluster (``2**n_bits`` devices).
            The sequence must consume exactly ``n_bits`` bits.

    Raises:
        ValueError: If the sequence does not consume exactly ``n_bits`` bits.
    """

    def __init__(self, steps: Sequence[PartitionStep], n_bits: int) -> None:
        self.steps: Tuple[PartitionStep, ...] = tuple(steps)
        self.n_bits = n_bits
        consumed = sum(s.bits_consumed for s in self.steps)
        if consumed != n_bits:
            raise ValueError(
                f"sequence consumes {consumed} bits but cluster has {n_bits}"
            )
        self._temporal_slots: List[_TemporalSlot] = []
        bit = 0
        for step in self.steps:
            if isinstance(step, TemporalPartition):
                self._temporal_slots.append(
                    _TemporalSlot(step, bit, len(self._temporal_slots))
                )
            bit += step.bits_consumed
        self.total_steps = 1
        for slot in self._temporal_slots:
            self.total_steps *= slot.step.temporal_steps
        self._slice_counts = self._compute_slice_counts()
        self._bit_deps = self._compute_bit_dependencies()

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    @property
    def n_devices(self) -> int:
        return 1 << self.n_bits

    @property
    def temporal_partitions(self) -> Tuple[TemporalPartition, ...]:
        return tuple(slot.step for slot in self._temporal_slots)

    @property
    def has_temporal(self) -> bool:
        return bool(self._temporal_slots)

    def slice_counts(self) -> Mapping[Dim, int]:
        """Number of slices each dimension is split into (phase-invariant)."""
        return dict(self._slice_counts)

    def _compute_slice_counts(self) -> Dict[Dim, int]:
        counts = {dim: 1 for dim in ALL_DIMS}
        for step in self.steps:
            if isinstance(step, DimPartition):
                counts[step.dim] *= 2
            elif isinstance(step, TemporalPartition):
                for dim in (Dim.M, Dim.N, Dim.K):
                    counts[dim] *= step.side
        return counts

    # ------------------------------------------------------------------
    # temporal step decomposition
    # ------------------------------------------------------------------

    def decompose_step(self, t: int) -> Tuple[int, ...]:
        """Split flat temporal step into per-primitive indices (outer first).

        Negative ``t`` indexes from the end (``-1`` is the last step), which
        the inter-operator cost model uses for Eq. 8's ``t = -1``.
        """
        t %= self.total_steps
        indices = [0] * len(self._temporal_slots)
        for pos in range(len(self._temporal_slots) - 1, -1, -1):
            radix = self._temporal_slots[pos].step.temporal_steps
            indices[pos] = t % radix
            t //= radix
        return tuple(indices)

    # ------------------------------------------------------------------
    # DSI evaluation (Algorithm 1)
    # ------------------------------------------------------------------

    def dsi(self, device: DeviceId, phase: Phase, t: int = 0) -> DsiResult:
        """Evaluate all DSIs of sub-operator ``(device, t)`` in ``phase``."""
        if device.n_bits != self.n_bits:
            raise ValueError(
                f"device has {device.n_bits} bits, evaluator expects {self.n_bits}"
            )
        t_indices = self.decompose_step(t)
        values = {dim: 0 for dim in ALL_DIMS}
        bit = 0
        temporal_pos = 0
        for step in self.steps:
            if isinstance(step, Replicate):
                bit += 1
            elif isinstance(step, DimPartition):
                values[step.dim] = 2 * values[step.dim] + device.bit(bit)
                bit += 1
            else:
                side = step.side
                row, col = square_coordinates(device, bit, step.k)
                t_local = t_indices[temporal_pos]
                last = 1 if t_local == side - 1 else 0
                if phase is Phase.FORWARD:
                    contrib = {
                        Dim.M: row % side,
                        Dim.N: (row + col + t_local) % side,
                        Dim.K: col % side,
                    }
                elif phase is Phase.BACKWARD:
                    contrib = {
                        Dim.M: row % side,
                        Dim.N: (row + col - 1) % side,
                        Dim.K: (col + t_local) % side,
                    }
                else:  # Phase.GRADIENT
                    contrib = {
                        Dim.M: (row + t_local) % side,
                        Dim.N: (row + col - 1 + last) % side,
                        Dim.K: (col - 1 + last) % side,
                    }
                for dim, value in contrib.items():
                    values[dim] = side * values[dim] + value
                bit += step.bits_consumed
                temporal_pos += 1
        return DsiResult(phase=phase, values=values)

    def tensor_dsi(
        self, device: DeviceId, phase: Phase, t: int, dims: Sequence[Dim]
    ) -> Tuple[int, ...]:
        """DSI tuple of a tensor (one entry per tensor dim) at ``(device, t)``."""
        result = self.dsi(device, phase, t)
        return tuple(result[d] for d in dims)

    def dsi_matrix(self, phase: Phase, t: int = 0):
        """All devices' DSIs at once: ``(n_devices, 4)`` int array.

        Vectorised equivalent of :meth:`dsi` over the whole cluster; column
        order follows :data:`~repro.core.dims.ALL_DIMS`.  This is the hot
        path of boundary-layout evaluation during optimisation.
        """
        import numpy as np

        cache = getattr(self, "_matrix_cache", None)
        if cache is None:
            cache = self._matrix_cache = {}
        t_norm = t % self.total_steps
        key = (phase, t_norm)
        if key in cache:
            return cache[key]
        n_dev = self.n_devices
        ranks = np.arange(n_dev, dtype=np.int64)
        bits = (ranks[:, None] >> (self.n_bits - 1 - np.arange(self.n_bits))) & 1
        t_indices = self.decompose_step(t_norm)
        values = {dim: np.zeros(n_dev, dtype=np.int64) for dim in ALL_DIMS}
        bit = 0
        temporal_pos = 0
        for step in self.steps:
            if isinstance(step, Replicate):
                bit += 1
            elif isinstance(step, DimPartition):
                values[step.dim] = 2 * values[step.dim] + bits[:, bit]
                bit += 1
            else:
                side = step.side
                k = step.k
                row = np.zeros(n_dev, dtype=np.int64)
                col = np.zeros(n_dev, dtype=np.int64)
                for j in range(k):
                    row = (row << 1) | bits[:, bit + 2 * j]
                    col = (col << 1) | bits[:, bit + 2 * j + 1]
                t_local = t_indices[temporal_pos]
                last = 1 if t_local == side - 1 else 0
                if phase is Phase.FORWARD:
                    contrib = {
                        Dim.M: row % side,
                        Dim.N: (row + col + t_local) % side,
                        Dim.K: col % side,
                    }
                elif phase is Phase.BACKWARD:
                    contrib = {
                        Dim.M: row % side,
                        Dim.N: (row + col - 1) % side,
                        Dim.K: (col + t_local) % side,
                    }
                else:
                    contrib = {
                        Dim.M: (row + t_local) % side,
                        Dim.N: (row + col - 1 + last) % side,
                        Dim.K: (col - 1 + last) % side,
                    }
                for dim, value in contrib.items():
                    values[dim] = side * values[dim] + value
                bit += step.bits_consumed
                temporal_pos += 1
        matrix = np.stack([values[dim] for dim in ALL_DIMS], axis=1)
        cache[key] = matrix
        return matrix

    # ------------------------------------------------------------------
    # symbolic dependency analysis (for group indicators, paper Sec. 4.1)
    # ------------------------------------------------------------------

    def _compute_bit_dependencies(self) -> Dict[Tuple[Phase, Dim], Set[int]]:
        deps: Dict[Tuple[Phase, Dim], Set[int]] = {
            (phase, dim): set() for phase in ALL_PHASES for dim in ALL_DIMS
        }
        bit = 0
        for step in self.steps:
            if isinstance(step, Replicate):
                bit += 1
                continue
            if isinstance(step, DimPartition):
                for phase in ALL_PHASES:
                    deps[(phase, step.dim)].add(bit)
                bit += 1
            else:
                row_bits = {bit + 2 * j for j in range(step.k)}
                col_bits = {bit + 2 * j + 1 for j in range(step.k)}
                for phase in ALL_PHASES:
                    deps[(phase, Dim.M)] |= row_bits
                    deps[(phase, Dim.N)] |= row_bits | col_bits
                    deps[(phase, Dim.K)] |= col_bits
                bit += step.bits_consumed
        return deps

    def bit_dependencies(self, phase: Phase, dim: Dim) -> Tuple[int, ...]:
        """Device-id bit positions that influence ``I_dim^phase`` (sorted).

        The union of these over a tensor's dims is the complement basis of
        the all-reduce *group indicator* (paper Sec. 4.1, Fig. 5).
        """
        return tuple(sorted(self._bit_deps[(phase, dim)]))

    def group_indicator(self, phase: Phase, dims: Sequence[Dim]) -> Tuple[int, ...]:
        """Bit positions jointly influencing the DSIs of ``dims`` in ``phase``."""
        positions: Set[int] = set()
        for dim in dims:
            positions |= self._bit_deps[(phase, dim)]
        return tuple(sorted(positions))

    def temporal_varying_dims(self, phase: Phase) -> Mapping[Dim, bool]:
        """Which dims' DSIs vary across temporal steps in ``phase``.

        Derived from Eq. 4-6: Forward varies ``N``; Backward varies ``K``;
        Gradient varies ``M`` every step and ``N``/``K`` only at the final
        step (the ``delta`` redistribution of ``dW``).
        """
        varying = {dim: False for dim in ALL_DIMS}
        if not self._temporal_slots:
            return varying
        if phase is Phase.FORWARD:
            varying[Dim.N] = True
        elif phase is Phase.BACKWARD:
            varying[Dim.K] = True
        else:
            varying[Dim.M] = True
            varying[Dim.N] = True
            varying[Dim.K] = True
        return varying

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        from .partitions import format_sequence

        return f"DsiEvaluator({format_sequence(self.steps)}, n_bits={self.n_bits})"
