"""Simulation-engine speed: pre-PR engine vs the optimised engine.

Replays the event-driven scenarios behind Figs. 7-10 under three regimes —
the frozen pre-optimisation engine (vendored in ``tests/legacy_engine.py``),
the optimised engine against a cold report cache, and the optimised engine
against a warm cache (the steady state when figures are regenerated) — plus
a serial-vs-parallel event-engine 3D sweep.  Every regime must produce the
identical report; the JSON records the check and the speedups.

Scenarios:

* ``block_replay`` — Fig. 9's MLP-block event replays (Megatron plans).
* ``contended_replay`` — a cross-node temporal plan whose rings share NIC
  pools, exercising the incremental fluid-contention path.
* ``fig9_pipeline_replay`` — the Fig. 9-scale event-driven pipeline
  schedule replay (the headline: warm replay must be >= 5x the pre-PR
  engine with an unchanged report).
* ``model_replay`` — full-depth ``run_model`` (splice verification +
  report cache; dominated by timeline replication, recorded for honesty).
* ``sweep`` — event-engine ``Planner3D`` sweep, serial vs ``--jobs``
  workers vs warm cache.

Standalone::

    PYTHONPATH=src python benchmarks/bench_sim_speed.py --jobs 4
    PYTHONPATH=src python benchmarks/bench_sim_speed.py --smoke   # CI-sized

or as a pytest benchmark (``pytest benchmarks/bench_sim_speed.py``, runs the
smoke configuration).  Results land in ``benchmarks/results/BENCH_sim_speed.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).parent.parent / "tests"))
sys.path.insert(0, str(Path(__file__).parent))

import legacy_engine
from conftest import ALPHA, RESULTS_DIR, jobs_for

from repro import (
    EventDrivenSimulator,
    FabricProfiler,
    Planner3D,
    TrainingSimulator,
    v100_cluster,
)
from repro.baselines.megatron import best_megatron_plan
from repro.core.dims import Dim
from repro.core.spec import PartitionSpec
from repro.graph.graph import ComputationGraph
from repro.graph.models import OPT_6_7B, OPT_175B
from repro.graph.operators import OpKind, OperatorSpec
from repro.graph.transformer import build_mlp_graph
from repro.parallel3d.pipeline import PipelinePlan, pipeline_iteration_events

REGIMES = ("legacy", "cold", "warm")


class _OrderedFlowSet:
    """Set API over an insertion-ordered dict (activation order)."""

    def __init__(self):
        self._flows = {}

    def add(self, flow):
        self._flows[flow] = None

    def discard(self, flow):
        self._flows.pop(flow, None)

    def __iter__(self):
        return iter(self._flows)

    def __contains__(self, flow):
        return flow in self._flows

    def __len__(self):
        return len(self._flows)

    def __bool__(self):
        return bool(self._flows)


class OrderedLegacyKernelGraph(legacy_engine.KernelGraph):
    """The pre-PR engine with its set-iteration order pinned to activation
    order, so same-timestamp completion cascades are reproducible and the
    identical-report checks below are run-to-run stable (see the golden
    regression suite for the full rationale)."""

    def __init__(self):
        super().__init__()
        self._active_flows = _OrderedFlowSet()


def _best_of(fn: Callable[[], object], rounds: int) -> Tuple[float, object]:
    """Best-of-``rounds`` wall clock; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _reports_identical(golden, candidate) -> bool:
    return (
        candidate.latency == golden.latency
        and candidate.throughput == golden.throughput
        and candidate.peak_memory_bytes == golden.peak_memory_bytes
        and candidate.timeline.records == golden.timeline.records
    )


def _three_regimes(
    profiler,
    run: Callable[[EventDrivenSimulator], object],
    cache_dir: str,
    rounds: int,
) -> Dict:
    """Time ``run`` on the legacy engine, then cold- and warm-cache."""
    legacy = EventDrivenSimulator(
        profiler,
        graph_factory=OrderedLegacyKernelGraph,
        use_disk_cache=False,
    )
    legacy_seconds, legacy_report = _best_of(lambda: run(legacy), rounds)
    os.environ["PRIMEPAR_CACHE_DIR"] = cache_dir
    optimised = EventDrivenSimulator(profiler)
    cold_seconds, cold_report = _best_of(lambda: run(optimised), 1)
    warm_seconds, warm_report = _best_of(lambda: run(optimised), rounds)
    return {
        "legacy_seconds": legacy_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_cold": legacy_seconds / cold_seconds,
        "speedup_warm": legacy_seconds / warm_seconds,
        "identical": (
            _reports_identical(legacy_report, cold_report)
            and _reports_identical(legacy_report, warm_report)
        ),
    }


def _measure_blocks(smoke: bool, workdir: str, rounds: int) -> List[Dict]:
    """Fig. 9's MLP-block event replays."""
    model = OPT_6_7B if smoke else OPT_175B
    cases = ((4, 8),) if smoke else ((8, 8), (16, 16))
    out = []
    for n_devices, batch in cases:
        profiler = FabricProfiler(v100_cluster(n_devices))
        graph = build_mlp_graph(model.block_shape(batch=batch))
        plan = best_megatron_plan(
            TrainingSimulator(profiler), graph, batch
        ).plan
        entry = _three_regimes(
            profiler,
            lambda sim: sim.run(graph, plan, batch),
            os.path.join(workdir, f"block-{n_devices}"),
            rounds,
        )
        entry.update(devices=n_devices, batch=batch, model=model.name)
        out.append(entry)
    return out


def _measure_contended(smoke: bool, workdir: str, rounds: int) -> Dict:
    """Cross-node temporal rings over shared NIC pools (fluid contention)."""
    if smoke:
        spec, n_bits, n_devices, gpn = "P2x2", 2, 4, 2
        sizes = {"batch": 2, "seq": 64, "hidden": 2048, "ffn": 2048}
        batch = 2
    else:
        spec, n_bits, n_devices, gpn = "B-P4x4", 5, 32, 4
        sizes = {"batch": 8, "seq": 64, "hidden": 8192, "ffn": 8192}
        batch = 8
    fc = OperatorSpec(
        name="fc",
        kind=OpKind.LINEAR,
        dim_axes={
            Dim.B: ("batch",),
            Dim.M: ("seq",),
            Dim.K: ("hidden",),
            Dim.N: ("ffn",),
        },
        axis_sizes=sizes,
    )
    graph = ComputationGraph(nodes=[fc], edges=[])
    plan = {"fc": PartitionSpec.from_string(spec, n_bits)}
    profiler = FabricProfiler(v100_cluster(n_devices, gpus_per_node=gpn))
    entry = _three_regimes(
        profiler,
        lambda sim: sim.run(graph, plan, batch),
        os.path.join(workdir, "contended"),
        rounds,
    )
    entry.update(devices=n_devices, spec=spec, batch=batch)
    return entry


def _measure_pipeline(smoke: bool, workdir: str, rounds: int) -> Dict:
    """The Fig. 9-scale event-driven pipeline schedule replay (headline)."""
    p, m = (4, 16) if smoke else (16, 128)
    plan = PipelinePlan(n_stages=p, n_microbatches=m)
    link = v100_cluster(32, gpus_per_node=4).inter_link
    stage_f, stage_b, boundary = 1e-3, 2e-3, 4e6

    legacy_seconds, legacy_report = _best_of(
        lambda: pipeline_iteration_events(
            plan, stage_f, stage_b, boundary, link,
            graph_factory=OrderedLegacyKernelGraph,
        ),
        rounds,
    )
    os.environ["PRIMEPAR_CACHE_DIR"] = os.path.join(workdir, "pipeline")
    cold_seconds, cold_report = _best_of(
        lambda: pipeline_iteration_events(
            plan, stage_f, stage_b, boundary, link
        ),
        1,
    )
    warm_seconds, warm_report = _best_of(
        lambda: pipeline_iteration_events(
            plan, stage_f, stage_b, boundary, link
        ),
        rounds,
    )
    identical = all(
        report.iteration_latency == legacy_report.iteration_latency
        and report.bubble_latency == legacy_report.bubble_latency
        and report.timeline.records == legacy_report.timeline.records
        for report in (cold_report, warm_report)
    )
    return {
        "stages": p,
        "microbatches": m,
        "legacy_seconds": legacy_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_cold": legacy_seconds / cold_seconds,
        "speedup_warm": legacy_seconds / warm_seconds,
        "identical": identical,
    }


def _measure_model(smoke: bool, workdir: str, rounds: int) -> Dict:
    """Full-depth ``run_model``: splice verification + report cache."""
    model = OPT_6_7B if smoke else OPT_175B
    n_devices, batch = (4, 8) if smoke else (16, 16)
    n_layers = 8 if smoke else model.n_layers
    profiler = FabricProfiler(v100_cluster(n_devices))
    graph = build_mlp_graph(model.block_shape(batch=batch))
    plan = best_megatron_plan(TrainingSimulator(profiler), graph, batch).plan
    entry = _three_regimes(
        profiler,
        lambda sim: sim.run_model(graph, plan, batch, n_layers),
        os.path.join(workdir, "model"),
        rounds,
    )
    entry.update(
        devices=n_devices, batch=batch, n_layers=n_layers, model=model.name
    )
    return entry


def _sweep_fingerprint(results) -> List[Tuple[str, float, float]]:
    return [
        (str(r.config), r.throughput, r.iteration_latency) for r in results
    ]


def _measure_sweep(smoke: bool, jobs: int, workdir: str) -> Dict:
    """Event-engine 3D sweep: serial vs workers vs warm cache."""
    model = OPT_6_7B
    n_devices = 8 if smoke else 16

    def sweep(n_jobs: int, cache_dir: str):
        os.environ["PRIMEPAR_CACHE_DIR"] = cache_dir
        planner = Planner3D(
            model, n_devices=n_devices, global_batch=n_devices,
            alpha=ALPHA, pipeline_engine="event", jobs=n_jobs,
        )
        started = time.perf_counter()
        results = planner.sweep("primepar")
        return time.perf_counter() - started, results

    serial_dir = os.path.join(workdir, "sweep-serial")
    serial_seconds, serial = sweep(1, serial_dir)
    parallel_seconds, parallel = sweep(
        jobs, os.path.join(workdir, "sweep-parallel")
    )
    warm_seconds, warm = sweep(1, serial_dir)
    reference = _sweep_fingerprint(serial)
    return {
        "devices": n_devices,
        "configs": len(serial),
        "jobs": jobs,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "warm_seconds": warm_seconds,
        "identical": (
            _sweep_fingerprint(parallel) == reference
            and _sweep_fingerprint(warm) == reference
        ),
    }


def run_benchmark(
    smoke: bool = False,
    jobs: Optional[int] = None,
    out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> Dict:
    jobs = jobs if jobs is not None else (jobs_for() if jobs_for() > 1 else 4)
    rounds = 1 if smoke else 3
    saved_env = os.environ.get("PRIMEPAR_CACHE_DIR")
    workdir = tempfile.mkdtemp(prefix="primepar-simbench-")
    try:
        payload = {
            "smoke": smoke,
            "jobs": jobs,
            "rounds": rounds,
            "block_replay": _measure_blocks(smoke, workdir, rounds),
            "contended_replay": _measure_contended(smoke, workdir, rounds),
            "fig9_pipeline_replay": _measure_pipeline(smoke, workdir, rounds),
            "model_replay": _measure_model(smoke, workdir, rounds),
            "sweep": _measure_sweep(smoke, jobs, workdir),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
        if saved_env is None:
            os.environ.pop("PRIMEPAR_CACHE_DIR", None)
        else:
            os.environ["PRIMEPAR_CACHE_DIR"] = saved_env
    out_path = Path(out) if out else RESULTS_DIR / "BENCH_sim_speed.json"
    out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2)
    if metrics_out:
        from repro.obs import write_metrics

        Path(metrics_out).parent.mkdir(parents=True, exist_ok=True)
        write_metrics(metrics_out)
    return payload


def _fmt(entry: Dict, label: str) -> str:
    return (
        f"  {label}: legacy {entry['legacy_seconds'] * 1e3:.1f}ms, "
        f"cold {entry['cold_seconds'] * 1e3:.1f}ms "
        f"({entry['speedup_cold']:.2f}x), "
        f"warm {entry['warm_seconds'] * 1e3:.1f}ms "
        f"({entry['speedup_warm']:.2f}x)"
        f"  [identical={entry['identical']}]"
    )


def _report(payload: Dict) -> str:
    lines = [
        f"jobs {payload['jobs']}, best of {payload['rounds']}"
        + (" (smoke)" if payload["smoke"] else "")
    ]
    for entry in payload["block_replay"]:
        lines.append(
            _fmt(entry, f"block {entry['devices']}dev b{entry['batch']}")
        )
    contended = payload["contended_replay"]
    lines.append(
        _fmt(contended, f"contended {contended['spec']} "
             f"{contended['devices']}dev")
    )
    pipe = payload["fig9_pipeline_replay"]
    lines.append(
        _fmt(pipe, f"pipeline p{pipe['stages']} m{pipe['microbatches']}")
    )
    model = payload["model_replay"]
    lines.append(
        _fmt(model, f"run_model {model['n_layers']}L {model['devices']}dev")
    )
    sweep = payload["sweep"]
    lines.append(
        f"  sweep ({sweep['devices']} devices, {sweep['configs']} configs): "
        f"serial {sweep['serial_seconds']:.2f}s, "
        f"x{sweep['jobs']} {sweep['parallel_seconds']:.2f}s, "
        f"warm {sweep['warm_seconds']:.2f}s"
        f"  [identical={sweep['identical']}]"
    )
    return "\n".join(lines)


def test_sim_speed_smoke(benchmark):
    payload = benchmark.pedantic(
        lambda: run_benchmark(smoke=True), rounds=1, iterations=1
    )
    sys.__stdout__.write("\n===== BENCH_sim_speed (smoke) =====\n")
    sys.__stdout__.write(_report(payload) + "\n")
    sys.__stdout__.flush()
    for entry in payload["block_replay"]:
        assert entry["identical"]
    assert payload["contended_replay"]["identical"]
    assert payload["fig9_pipeline_replay"]["identical"]
    assert payload["model_replay"]["identical"]
    assert payload["sweep"]["identical"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: OPT-6.7B scenarios at 4-8 devices",
    )
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes for the parallel sweep "
             "(default: REPRO_BENCH_JOBS or 4)",
    )
    parser.add_argument(
        "--out", default="",
        help="output JSON path (default benchmarks/results/BENCH_sim_speed.json)",
    )
    parser.add_argument(
        "--metrics-out", default="", metavar="PATH",
        help="also dump the telemetry registry (metrics + spans) as JSON",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(
        smoke=args.smoke, jobs=args.jobs or None, out=args.out or None,
        metrics_out=args.metrics_out or None,
    )
    print(_report(payload))
    out = args.out or str(RESULTS_DIR / "BENCH_sim_speed.json")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
