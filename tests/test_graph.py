"""Computation graphs, operators and the transformer block structure."""

import pytest

from repro.core.dims import Dim, Phase
from repro.graph.graph import ComputationGraph, Edge
from repro.graph.models import (
    BENCHMARK_MODELS,
    BLOOM_176B,
    LLAMA2_70B,
    OPT_175B,
    OPT_6_7B,
)
from repro.graph.operators import OpKind, OperatorSpec
from repro.graph.transformer import (
    BLOCK_NODE_NAMES,
    BlockShape,
    build_block_graph,
    build_mlp_graph,
)


def _op(name, kind=OpKind.ELEMENTWISE):
    return OperatorSpec(
        name=name,
        kind=kind,
        dim_axes={Dim.B: ("batch",), Dim.M: ("seq",), Dim.K: ("hidden",)},
        axis_sizes={"batch": 4, "seq": 16, "hidden": 32},
    )


class TestGraphValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ComputationGraph([_op("a"), _op("a")], [])

    def test_dangling_edge_rejected(self):
        with pytest.raises(ValueError):
            ComputationGraph([_op("a")], [Edge("a", "b")])

    def test_backward_edge_rejected(self):
        with pytest.raises(ValueError):
            ComputationGraph([_op("a"), _op("b")], [Edge("b", "a")])

    def test_duplicate_slot_rejected(self):
        with pytest.raises(ValueError):
            ComputationGraph(
                [_op("a"), _op("b"), _op("c")],
                [Edge("a", "c", "I"), Edge("b", "c", "I")],
            )

    def test_lookups(self):
        g = ComputationGraph([_op("a"), _op("b")], [Edge("a", "b")])
        assert g.node("a").name == "a"
        assert g.index("b") == 1
        assert g.predecessors("b") == ["a"]
        assert g.successors("a") == ["b"]
        assert len(g) == 2


class TestOperatorSpec:
    def test_linear_dims(self):
        op = OperatorSpec(
            name="fc",
            kind=OpKind.LINEAR,
            dim_axes={
                Dim.B: ("batch",), Dim.M: ("seq",),
                Dim.N: ("hidden",), Dim.K: ("ffn",),
            },
            axis_sizes={"batch": 4, "seq": 16, "hidden": 32, "ffn": 64},
        )
        assert op.dim_size(Dim.N) == 32
        assert op.present_dims == (Dim.B, Dim.M, Dim.N, Dim.K)
        assert op.allow_temporal
        assert op.parameter_elements() == 32 * 64
        assert op.flops(Phase.FORWARD) == 2 * 4 * 16 * 32 * 64

    def test_softmax_protects_reduction_dim(self):
        op = OperatorSpec(
            name="sm",
            kind=OpKind.SOFTMAX,
            dim_axes={Dim.B: ("batch", "heads"), Dim.M: ("seq",), Dim.K: ("seq_k",)},
            axis_sizes={"batch": 4, "heads": 8, "seq": 16, "seq_k": 16},
        )
        assert Dim.K not in op.legal_dims
        assert not op.allow_temporal

    def test_attention_matmul_protects_embed(self):
        op = OperatorSpec(
            name="scores",
            kind=OpKind.MATMUL,
            dim_axes={
                Dim.B: ("batch", "heads"), Dim.M: ("seq",),
                Dim.N: ("embed",), Dim.K: ("seq_k",),
            },
            axis_sizes={"batch": 4, "heads": 8, "seq": 16, "embed": 64, "seq_k": 16},
        )
        assert Dim.N not in op.legal_dims
        assert not op.allow_temporal
        assert op.parameter_elements() == 0

    def test_attention_axis_options(self):
        op = OperatorSpec(
            name="scores",
            kind=OpKind.MATMUL,
            dim_axes={
                Dim.B: ("batch", "heads"), Dim.M: ("seq",),
                Dim.N: ("embed",), Dim.K: ("seq_k",),
            },
            axis_sizes={"batch": 4, "heads": 8, "seq": 16, "embed": 64, "seq_k": 16},
        )
        assert op.partition_axis_options(Dim.B) == ("batch", "heads")
        assert op.partition_axis_options(Dim.M) == (None,)

    def test_layernorm_parameters(self):
        op = _op("ln", OpKind.LAYERNORM)
        assert op.parameter_elements() == 2 * 32
        assert op.flops(Phase.GRADIENT) > 0

    def test_elementwise_gradient_free(self):
        op = _op("add")
        assert op.flops(Phase.GRADIENT) == 0.0


class TestTransformerBlock:
    def test_node_ordering_matches_fig6(self, small_block):
        names = [n.name for n in small_block.nodes]
        assert names[0] == "input"
        assert names[1:] == [f"L0.{n}" for n in BLOCK_NODE_NAMES]

    def test_extended_edges(self, small_block):
        extended = {(e.src, e.dst) for e in small_block.extended_edges()}
        assert ("L0.qkv", "L0.context") in extended
        assert ("input", "L0.add1") in extended
        assert ("L0.add1", "L0.add2") in extended
        assert len(extended) == 3

    def test_qkv_feeds_three_consumers(self, small_block):
        outs = small_block.out_edges("L0.qkv")
        assert len(outs) == 3
        fixed = sorted(
            (e.dst.split(".")[-1], e.slot, e.src_fixed["qkv"].start)
            for e in outs
        )
        assert fixed == [("context", "W", 2), ("scores", "I", 0), ("scores", "W", 1)]

    def test_attention_key_axis_renamed(self, small_block):
        edge = next(
            e for e in small_block.edges
            if e.dst == "L0.scores" and e.slot == "W"
        )
        assert edge.axis_map == {"seq": "seq_k"}

    def test_residual_adds_do_not_stash(self, small_block):
        assert not small_block.node("L0.add1").stash_inputs
        assert not small_block.node("L0.add2").stash_inputs
        assert small_block.node("L0.act").stash_inputs

    def test_multi_layer_chaining(self):
        g = build_block_graph(OPT_6_7B.block_shape(batch=8), n_layers=3)
        assert len(g.nodes) == 1 + 3 * len(BLOCK_NODE_NAMES)
        assert "L2.add2" in [n.name for n in g.nodes]
        assert ("L0.add2", "L1.add1") in {(e.src, e.dst) for e in g.edges}

    def test_mlp_graph(self, small_mlp):
        assert [n.name for n in small_mlp.nodes] == ["input", "fc1", "act", "fc2"]

    def test_embed_divisibility_checked(self):
        with pytest.raises(ValueError):
            BlockShape(batch=8, seq=128, hidden=100, heads=3, ffn=400).embed


class TestModels:
    def test_parameter_counts(self):
        # within 6% of the nominal sizes
        assert OPT_175B.parameters / 175e9 == pytest.approx(1.0, abs=0.06)
        assert OPT_6_7B.parameters / 6.7e9 == pytest.approx(1.0, abs=0.06)
        assert BLOOM_176B.parameters / 176e9 == pytest.approx(1.0, abs=0.06)

    def test_embed_is_128_for_all(self):
        for model in BENCHMARK_MODELS:
            assert model.hidden // model.heads == 128

    def test_block_shape(self):
        shape = LLAMA2_70B.block_shape(batch=16)
        assert shape.hidden == 8192
        assert shape.seq == LLAMA2_70B.default_seq
        assert shape.axis_sizes()["qkv"] == 3

    def test_total_flops_positive(self, small_block):
        assert small_block.total_flops() > 0
        assert small_block.total_parameters() > 0
