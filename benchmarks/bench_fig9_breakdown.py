"""Fig. 9 — MLP-block latency breakdown and kernel timelines.

OPT-175B MLP blocks at (batch 8, 8 GPUs) and (batch 16, 16 GPUs):
Megatron-LM vs PrimePar latency decomposed into compute / collective /
overlapped-ring, the collective-latency reduction, the searched partition
sequences, and the kernel execution timeline of one device.
"""

from __future__ import annotations

from conftest import ALPHA, emit

from repro import (
    EventDrivenSimulator,
    FabricProfiler,
    PrimeParOptimizer,
    TrainingSimulator,
    v100_cluster,
)
from repro.baselines.megatron import best_megatron_plan
from repro.graph.models import OPT_175B
from repro.graph.transformer import build_mlp_graph
from repro.reporting.tables import format_table


def _render_timeline(report, limit=24):
    lines = []
    for record in report.timeline.records[:limit]:
        bar = "~overlap~" if record.overlapped else "#" * max(
            1, min(int(record.duration * 2e3), 40)
        )
        lines.append(
            f"  {record.start * 1e3:8.2f}ms {record.kind:12s} "
            f"{record.op:>8s}.{record.phase} {record.duration * 1e3:7.2f}ms {bar}"
        )
    return "\n".join(lines)


def _run_case(n_devices, batch):
    profiler = FabricProfiler(v100_cluster(n_devices))
    simulator = TrainingSimulator(profiler)
    graph = build_mlp_graph(OPT_175B.block_shape(batch=batch))
    megatron = best_megatron_plan(simulator, graph, batch)
    primepar = PrimeParOptimizer(profiler, alpha=ALPHA).optimize(graph)
    pp_report = simulator.run(graph, primepar.plan, batch)
    pp_event = EventDrivenSimulator(profiler).run(graph, primepar.plan, batch)
    return {
        "megatron": megatron,
        "primepar_plan": primepar.plan,
        "megatron_report": megatron.report,
        "primepar_report": pp_report,
        "primepar_event": pp_event,
    }


def _collect():
    return {
        (8, 8): _run_case(8, 8),
        (16, 16): _run_case(16, 16),
    }


def test_fig9_breakdown(benchmark):
    cases = benchmark.pedantic(_collect, rounds=1, iterations=1)
    rows = []
    sections = []
    for (n_devices, batch), case in cases.items():
        meg = case["megatron_report"]
        pp = case["primepar_report"]
        meg_coll = meg.collective_latency
        pp_coll = pp.collective_latency
        reduction = pp_coll / meg_coll if meg_coll else float("nan")
        rows.append(
            [
                f"{n_devices} GPUs, batch {batch}",
                f"{meg.breakdown.get('compute', 0) * 1e3:.1f}",
                f"{pp.breakdown.get('compute', 0) * 1e3:.1f}",
                f"{meg_coll * 1e3:.1f}",
                f"{pp_coll * 1e3:.1f}",
                f"{pp.breakdown.get('ring-overlapped', 0) * 1e3:.1f}",
                f"{reduction * 100:.1f}%",
            ]
        )
        plans = "\n".join(
            f"  {name.split('.')[-1]}.P = {spec}"
            for name, spec in case["primepar_plan"].items()
        )
        event = case["primepar_event"]
        sections.append(
            f"--- {n_devices} GPUs, batch {batch} ---\n"
            f"Megatron best (d={case['megatron'].dp_degree}, "
            f"m={case['megatron'].mp_degree})\n"
            f"PrimePar partition sequences:\n{plans}\n"
            f"Event-driven cross-check: analytic {pp.latency * 1e3:.2f} ms, "
            f"event {event.latency * 1e3:.2f} ms "
            f"({event.latency / pp.latency:.3f}x; excess = link contention)\n"
            f"PrimePar timeline (one device, SPMD):\n"
            + _render_timeline(pp)
        )
    table = format_table(
        [
            "config",
            "meg compute ms",
            "pp compute ms",
            "meg collective ms",
            "pp collective ms",
            "pp ring (overlapped) ms",
            "pp/meg collective",
        ],
        rows,
        title="Fig. 9: OPT-175B MLP latency breakdown (per layer)",
    )
    emit("fig9_breakdown", table + "\n\n" + "\n\n".join(sections))

    for (n_devices, batch), case in cases.items():
        meg = case["megatron_report"]
        pp = case["primepar_report"]
        # Computation latency roughly matches (paper: PrimePar does not
        # trade compute efficiency for communication efficiency).
        assert pp.breakdown.get("compute", 0) <= meg.breakdown.get(
            "compute", 0
        ) * 1.25
        # Collective latency shrinks substantially (paper: 19.9% - 62.2%).
        assert pp.collective_latency < meg.collective_latency
        # The searched plan uses the temporal primitive on the MLP linears.
        assert any(s.has_temporal for s in case["primepar_plan"].values())
        # The discrete-event replay never beats the analytic bound (its
        # fluid link model only *adds* contention) and stays in the same
        # regime — excess is genuine NIC sharing, not a modelling bug.
        event = case["primepar_event"]
        assert event.latency >= pp.latency * (1 - 1e-9)
        assert event.latency <= pp.latency * 3.0
