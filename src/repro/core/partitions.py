"""Basic partition steps composing a PrimePar partition sequence.

A partition plan for an operator is a sequence of basic partitions
(paper Sec. 3).  Two kinds exist:

* :class:`DimPartition` — conventional *partition by dimension*: split one
  dimension into two slices and distribute them across the two values of the
  next device-id bit (paper Sec. 3.2).  Covers data parallelism (``B``) and
  Megatron-style model parallelism (``N``/``K``/head dims).
* :class:`TemporalPartition` — the paper's novel spatial-temporal primitive
  ``P_{2^k x 2^k}`` (paper Sec. 3.3): distributes ``2^k`` sub-operators per
  device across temporal steps over a logical ``2^k x 2^k`` device square,
  avoiding all-reduce and tensor replication entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from .dims import Dim


@dataclass(frozen=True)
class DimPartition:
    """Partition one dimension into two slices across one device-id bit.

    When the dimension flattens several logical axes (an attention matmul's
    ``B`` spans ``batch`` and ``heads``), ``axis`` selects which axis the
    split applies to, forming a grid rather than contiguous flat slices —
    this is how Megatron's head-aligned attention partitioning is expressed.
    ``None`` defers to the operator's default axis (first with capacity).
    """

    dim: Dim
    axis: Optional[str] = None

    #: Device-id bits consumed by this step.
    bits_consumed: int = 1
    #: Temporal steps contributed by this step (spatial only, hence 1).
    temporal_steps: int = 1

    def __str__(self) -> str:
        if self.axis:
            return f"{self.dim.value}[{self.axis}]"
        return self.dim.value

    def slices(self) -> int:
        """Number of slices this step multiplies the dimension's count by."""
        return 2


@dataclass(frozen=True)
class TemporalPartition:
    """The spatial-temporal primitive ``P_{2^k x 2^k}`` (paper Sec. 3.3).

    Consumes ``2k`` device-id bits (row/column interleaved, Alg. 1 lines 9-10)
    and schedules ``2^k`` sub-operators per device over temporal steps.
    Dimensions ``M``, ``N``, ``K`` are each split into ``2^k`` slices; the
    batch dimension is untouched.
    """

    k: int = 1

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"P_{{2^k x 2^k}} requires k >= 1, got k={self.k}")

    @property
    def side(self) -> int:
        """Side length ``2^k`` of the logical device square."""
        return 1 << self.k

    @property
    def bits_consumed(self) -> int:
        return 2 * self.k

    @property
    def temporal_steps(self) -> int:
        return self.side

    def slices(self) -> int:
        """Slice multiplier applied to each of ``M``, ``N``, ``K``."""
        return self.side

    def __str__(self) -> str:
        return f"P{self.side}x{self.side}"


@dataclass(frozen=True)
class Replicate:
    """Consume one device-id bit without partitioning anything.

    The two halves of the bit execute identical sub-operators on identical
    data — Megatron-LM's treatment of layer norms and element-wise ops
    within a model-parallel group.  Costs replication memory and duplicated
    compute, but no communication.
    """

    bits_consumed: int = 1
    temporal_steps: int = 1

    def __str__(self) -> str:
        return "R"

    def slices(self) -> int:
        return 1


PartitionStep = Union[DimPartition, TemporalPartition, Replicate]


def parse_step(token: str) -> PartitionStep:
    """Parse a step token: ``"B"``, ``"B[heads]"``, ``"R"``, or ``"P2x2"``."""
    token = token.strip()
    if token.upper() == "R":
        return Replicate()
    if "[" in token and token.endswith("]"):
        dim_part, axis = token[:-1].split("[", 1)
        if dim_part.upper() in {d.value for d in Dim}:
            return DimPartition(Dim(dim_part.upper()), axis=axis)
    if token.upper() in {d.value for d in Dim}:
        return DimPartition(Dim(token.upper()))
    if token.upper().startswith("P"):
        body = token[1:].lower()
        parts = body.split("x")
        if len(parts) == 2 and parts[0] == parts[1] and parts[0].isdigit():
            side = int(parts[0])
            if side >= 2 and side & (side - 1) == 0:
                return TemporalPartition(k=side.bit_length() - 1)
    raise ValueError(f"unrecognised partition step token: {token!r}")


def parse_sequence(text: str) -> Tuple[PartitionStep, ...]:
    """Parse a comma/space separated sequence, e.g. ``"B, N, P2x2"``."""
    tokens = [t for t in text.replace(",", " ").split() if t]
    return tuple(parse_step(t) for t in tokens)


def format_sequence(steps: Tuple[PartitionStep, ...]) -> str:
    """Render a sequence in the paper's ``fc1.P`` notation, e.g. ``B-N-P2x2``."""
    return "-".join(str(s) for s in steps) if steps else "(replicated)"
