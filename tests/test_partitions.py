"""Basic partition steps: construction, parsing, formatting."""

import pytest

from repro.core.dims import Dim
from repro.core.partitions import (
    DimPartition,
    Replicate,
    TemporalPartition,
    format_sequence,
    parse_sequence,
    parse_step,
)


class TestDimPartition:
    def test_consumes_one_bit(self):
        step = DimPartition(Dim.N)
        assert step.bits_consumed == 1
        assert step.temporal_steps == 1
        assert step.slices() == 2

    def test_str_plain(self):
        assert str(DimPartition(Dim.K)) == "K"

    def test_str_with_axis(self):
        assert str(DimPartition(Dim.B, axis="heads")) == "B[heads]"

    def test_equality_includes_axis(self):
        assert DimPartition(Dim.B) != DimPartition(Dim.B, axis="heads")
        assert DimPartition(Dim.B, axis="heads") == DimPartition(Dim.B, axis="heads")


class TestTemporalPartition:
    def test_k1_properties(self):
        step = TemporalPartition(1)
        assert step.side == 2
        assert step.bits_consumed == 2
        assert step.temporal_steps == 2
        assert step.slices() == 2

    def test_k2_properties(self):
        step = TemporalPartition(2)
        assert step.side == 4
        assert step.bits_consumed == 4
        assert step.temporal_steps == 4

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TemporalPartition(0)

    def test_str(self):
        assert str(TemporalPartition(1)) == "P2x2"
        assert str(TemporalPartition(2)) == "P4x4"


class TestReplicate:
    def test_properties(self):
        step = Replicate()
        assert step.bits_consumed == 1
        assert step.temporal_steps == 1
        assert step.slices() == 1
        assert str(step) == "R"


class TestParsing:
    def test_parse_dims(self):
        for token, dim in [("B", Dim.B), ("m", Dim.M), ("N", Dim.N), ("k", Dim.K)]:
            step = parse_step(token)
            assert isinstance(step, DimPartition)
            assert step.dim is dim

    def test_parse_axis(self):
        step = parse_step("B[heads]")
        assert step == DimPartition(Dim.B, axis="heads")

    def test_parse_replicate(self):
        assert parse_step("R") == Replicate()
        assert parse_step("r") == Replicate()

    def test_parse_temporal(self):
        assert parse_step("P2x2") == TemporalPartition(1)
        assert parse_step("P4x4") == TemporalPartition(2)
        assert parse_step("p8x8") == TemporalPartition(3)

    def test_parse_rejects_non_square(self):
        with pytest.raises(ValueError):
            parse_step("P2x4")

    def test_parse_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            parse_step("P3x3")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_step("X")

    def test_parse_sequence_commas_and_spaces(self):
        steps = parse_sequence("B, N P2x2")
        assert steps == (
            DimPartition(Dim.B),
            DimPartition(Dim.N),
            TemporalPartition(1),
        )

    def test_format_round_trip(self):
        steps = (DimPartition(Dim.B), Replicate(), TemporalPartition(2))
        text = format_sequence(steps)
        assert text == "B-R-P4x4"
        assert parse_sequence(text.replace("-", " ")) == steps

    def test_format_empty(self):
        assert format_sequence(()) == "(replicated)"
