"""Fig. 10 — 3D parallelism throughput over (p, d, m) configurations.

All power-of-two ``(p, d, m)`` with ``p > 1`` on 32 GPUs; Megatron-LM and
PrimePar provide the tensor-parallel plans of each stage (PrimePar with
batch partitioning disabled — data parallelism is controlled externally,
as in the paper's Sec. 6.4).
"""

from __future__ import annotations

from conftest import ALPHA, emit

from repro.graph.models import BENCHMARK_MODELS, BLOOM_176B, LLAMA2_70B, OPT_175B
from repro.parallel3d.planner import Planner3D
from repro.reporting.tables import Figure

#: Keep the sweep tractable: the two ~7B models plus the three largest.
SWEEP_MODELS = [m for m in BENCHMARK_MODELS if m.name != "BLOOM 7B1"]


def _collect():
    figures = {}
    for model in SWEEP_MODELS:
        planner = Planner3D(
            model, n_devices=32, global_batch=32, microbatch=4, alpha=ALPHA
        )
        figure = Figure(f"Fig. 10: {model.name} 3D throughput (samples/s)")
        for method in ("megatron", "primepar"):
            series = figure.series_named(method)
            for result in planner.sweep(method):
                series.add(str(result.config), result.throughput)
        figures[model.name] = figure
    return figures


def test_fig10_3d_parallelism(benchmark):
    figures = benchmark.pedantic(_collect, rounds=1, iterations=1)
    blocks = []
    for name, figure in figures.items():
        blocks.append(figure.render("{:.2f}"))
        blocks.append(figure.normalized_to("megatron").render("{:.3f}"))
    emit("fig10_3d_parallelism", "\n\n".join(blocks))

    for name, figure in figures.items():
        meg = figure.series_named("megatron").values
        pp = figure.series_named("primepar").values
        # PrimePar never loses under any (p, d, m) (paper: consistently
        # superior across configurations).
        assert all(pp[c] >= meg[c] * 0.98 for c in meg), name
        # Best configurations prefer model parallelism over data
        # parallelism for the 100B+ models (paper: (2,1,16)-style optima).
        best_pp = max(pp, key=pp.get)
        if name in (OPT_175B.name, BLOOM_176B.name, LLAMA2_70B.name):
            best_cfg = best_pp.strip("()").replace(" ", "")
            d_value = int(best_cfg.split(",")[1].split("=")[1])
            m_value = int(best_cfg.split(",")[2].split("=")[1])
            assert m_value >= d_value, (name, best_pp)
    # Somewhere across models PrimePar posts a material 3D win.
    gains = []
    for figure in figures.values():
        meg = figure.series_named("megatron").values
        pp = figure.series_named("primepar").values
        gains.extend(pp[c] / meg[c] for c in meg)
    assert max(gains) >= 1.05
