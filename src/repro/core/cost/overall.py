"""Overall plan cost — paper Eq. 10.

``C = sum_i intraC(n_i, P_i) + sum_(i,j) interC(n_i, n_j, P_i, P_j)`` over
a computation graph with one partition spec per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ...cluster.profiler import FabricProfiler
from ...graph.graph import ComputationGraph
from ..spec import PartitionSpec
from .inter import InterOperatorCostModel
from .intra import IntraOperatorCostModel
from .memory import MemoryCostModel


@dataclass(frozen=True)
class PlanCost:
    """Decomposed cost of a full plan, per training iteration."""

    compute_latency: float
    ring_exposed: float
    allreduce_latency: float
    inter_latency: float
    memory_bytes: float

    @property
    def latency(self) -> float:
        return (
            self.compute_latency
            + self.ring_exposed
            + self.allreduce_latency
            + self.inter_latency
        )

    def objective(self, alpha: float) -> float:
        """Eq. 10 scalar under memory weight ``alpha``."""
        return self.latency + alpha * self.memory_bytes


class OverallCostModel:
    """Evaluates Eq. 10 for explicit plans."""

    def __init__(
        self,
        profiler: FabricProfiler,
        alpha: float = 0.0,
        memory_model: MemoryCostModel = None,
    ) -> None:
        self.profiler = profiler
        self.alpha = alpha
        self.intra = IntraOperatorCostModel(
            profiler, alpha=alpha, memory_model=memory_model
        )
        self.inter = InterOperatorCostModel(profiler)

    def plan_cost(
        self, graph: ComputationGraph, plan: Mapping[str, PartitionSpec]
    ) -> PlanCost:
        """Cost of ``plan`` (node name -> spec) over ``graph``."""
        compute = ring = allreduce = memory = 0.0
        for node in graph.nodes:
            cost = self.intra.cost(node, plan[node.name])
            compute += cost.compute_latency
            ring += cost.ring_exposed
            allreduce += cost.allreduce_latency
            memory += cost.memory_bytes
        inter_total = 0.0
        for edge in graph.edges:
            inter_total += self.inter.cost(
                edge,
                graph.node(edge.src),
                plan[edge.src],
                graph.node(edge.dst),
                plan[edge.dst],
            )
        return PlanCost(
            compute_latency=compute,
            ring_exposed=ring,
            allreduce_latency=allreduce,
            inter_latency=inter_total,
            memory_bytes=memory,
        )
