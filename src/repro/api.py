"""``repro.api`` — the one front door for requests and results.

Every surface that accepts a planning request — the ``primepar`` CLI, the
``repro.serve`` HTTP daemon, and the typed :class:`~repro.serve.client.PlanClient`
— used to spell the same request slightly differently (argparse namespaces,
``SearchParams``, ad-hoc dicts).  This module is the single schema:

* **Request types** — frozen dataclasses (:class:`SearchRequest`,
  :class:`SimulateRequest`, :class:`ExplainRequest`,
  :class:`RobustnessRequest`) with ``schema_version`` stamps,
  ``to_json``/``from_json`` round-trips, and validation errors that carry
  the offending field path (:class:`ValidationError`, mapped to HTTP 400
  by the server).
* **Result envelopes** — helpers (:func:`stamp`, :func:`check_schema`,
  :func:`plan_to_json`, :func:`plan_from_json`) used by the schema-versioned
  ``to_json``/``from_json`` pairs on :class:`~repro.IterationReport`,
  :class:`~repro.SearchResult`, ``PipelineReport`` and ``RobustnessReport``.

``repro.serve.SearchParams`` survives as a thin deprecated alias of
:class:`SearchRequest` (one release; it warns on use), and
``repro.serve.RequestError`` is now literally :class:`ValidationError`.

Wire compatibility: field names, defaults, canonicalization (``batch == 0``
resolves to ``max(8, min(devices, 32))``) and the plan cache key are
bit-identical to the pre-``repro.api`` serving layer, so warm plan stores
and checked-in bench baselines remain valid.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

from . import cache as diskcache
from .graph.models import MODELS_BY_KEY

__all__ = [
    "ExplainRequest",
    "MAX_DEVICES",
    "OBJECTIVES",
    "RobustnessRequest",
    "SCHEMA_VERSION",
    "SearchRequest",
    "SimulateRequest",
    "ValidationError",
    "check_schema",
    "plan_from_json",
    "plan_to_json",
    "stamp",
]

#: Version stamp carried by every request body and result document this
#: module emits; bump when any schema changes meaning.
SCHEMA_VERSION = 1

#: Largest cluster a request may ask for (guards against absurd bodies).
MAX_DEVICES = 4096

#: Plan-scoring objectives understood by the robustness layer.
OBJECTIVES = ("nominal", "p50", "p95", "p99", "blend")


class ValidationError(Exception):
    """A malformed request or document (HTTP 400).

    Args:
        message: Human-readable description of the failure.
        field: Dotted path of the offending field (``""`` when the body as
            a whole is malformed), surfaced in error payloads so clients
            can point at the exact input.
    """

    def __init__(self, message: str, field: str = "") -> None:
        super().__init__(message)
        self.field = field

    @property
    def message(self) -> str:
        return str(self.args[0]) if self.args else ""


def _field(body: Mapping[str, Any], name: str, kind, default, path: str = ""):
    value = body.get(name, default)
    where = f"{path}.{name}" if path else name
    if isinstance(value, bool) and kind is not bool:
        raise ValidationError(f"field {name!r} must be {kind.__name__}", where)
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind):
        raise ValidationError(f"field {name!r} must be {kind.__name__}", where)
    return value


def _require_object(body: Any) -> Mapping[str, Any]:
    if not isinstance(body, Mapping):
        raise ValidationError("request body must be a JSON object")
    version = body.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema_version {version!r}; this build speaks "
            f"{SCHEMA_VERSION}",
            "schema_version",
        )
    return body


# ----------------------------------------------------------------------
# request types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SearchRequest:
    """One plan-search request (CLI ``primepar search``, ``POST /v1/search``).

    ``batch == 0`` resolves to the default workload scaling
    (``max(8, min(devices, 32))``) during :meth:`from_json`; ``beam == 0``
    means exact search; ``deadline == 0`` defers to the server default.
    """

    model: str = "opt-6.7b"
    devices: int = 8
    batch: int = 0
    alpha: float = 2e-11
    beam: int = 0
    include_temporal: bool = True
    deadline: float = 0.0

    @classmethod
    def from_json(cls, body: Any) -> "SearchRequest":
        """Validate and canonicalize a raw JSON body.

        Raises:
            ValidationError: With the offending field path on any
                malformed or out-of-range field.
        """
        body = _require_object(body)
        model = _field(body, "model", str, "opt-6.7b")
        if model not in MODELS_BY_KEY:
            raise ValidationError(
                f"unknown model {model!r}; expected one of "
                f"{sorted(MODELS_BY_KEY)}",
                "model",
            )
        devices = _field(body, "devices", int, 8)
        if not 2 <= devices <= MAX_DEVICES or devices & (devices - 1):
            raise ValidationError(
                f"devices must be a power of two in [2, {MAX_DEVICES}], "
                f"got {devices}",
                "devices",
            )
        batch = _field(body, "batch", int, 0)
        if batch < 0:
            raise ValidationError(f"batch must be >= 0, got {batch}", "batch")
        if batch == 0:
            batch = max(8, min(devices, 32))
        alpha = _field(body, "alpha", float, 2e-11)
        if alpha < 0:
            raise ValidationError(f"alpha must be >= 0, got {alpha}", "alpha")
        beam = _field(body, "beam", int, 0)
        if beam < 0:
            raise ValidationError(f"beam must be >= 0, got {beam}", "beam")
        include_temporal = _field(body, "include_temporal", bool, True)
        deadline = _field(body, "deadline", float, 0.0)
        if deadline < 0:
            raise ValidationError(
                f"deadline must be >= 0, got {deadline}", "deadline"
            )
        return cls(
            model=model,
            devices=devices,
            batch=batch,
            alpha=alpha,
            beam=beam,
            include_temporal=include_temporal,
            deadline=deadline,
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "model": self.model,
            "devices": self.devices,
            "batch": self.batch,
            "alpha": self.alpha,
            "beam": self.beam,
            "include_temporal": self.include_temporal,
            "deadline": self.deadline,
        }

    def cache_key(self) -> str:
        """Content hash identifying this request's plan payload.

        ``deadline`` is deliberately excluded — it shapes *when* a search
        may be cut off, never *what* plan it yields — so the key is
        bit-identical to the pre-``repro.api`` serving layer.
        """
        return diskcache.content_key(
            "plan",
            SCHEMA_VERSION,
            self.model,
            self.devices,
            self.batch,
            self.alpha,
            self.beam,
            self.include_temporal,
        )


@dataclass(frozen=True)
class SimulateRequest:
    """One plan-replay request (``primepar simulate``, ``POST /v1/simulate``)."""

    search: SearchRequest = field(default_factory=SearchRequest)
    engine: str = "analytic"
    layers: int = 0

    @classmethod
    def from_json(cls, body: Any) -> "SimulateRequest":
        search = SearchRequest.from_json(body)
        body = _require_object(body)
        engine = _field(body, "engine", str, "analytic")
        if engine not in ("analytic", "event"):
            raise ValidationError(
                f"engine must be 'analytic' or 'event', got {engine!r}",
                "engine",
            )
        layers = _field(body, "layers", int, 0)
        if layers < 0:
            raise ValidationError(f"layers must be >= 0, got {layers}", "layers")
        return cls(search=search, engine=engine, layers=layers)

    def to_json(self) -> Dict[str, Any]:
        return {
            **self.search.to_json(),
            "engine": self.engine,
            "layers": self.layers,
        }


@dataclass(frozen=True)
class ExplainRequest:
    """One cost-decomposition request (``primepar explain``, ``POST /v1/explain``)."""

    search: SearchRequest = field(default_factory=SearchRequest)
    links: bool = False

    @classmethod
    def from_json(cls, body: Any) -> "ExplainRequest":
        search = SearchRequest.from_json(body)
        body = _require_object(body)
        links = _field(body, "links", bool, False)
        return cls(search=search, links=links)

    def to_json(self) -> Dict[str, Any]:
        return {**self.search.to_json(), "links": self.links}


@dataclass(frozen=True)
class RobustnessRequest:
    """One robustness-scoring request (``primepar faults``, ``POST /v1/robustness``).

    ``faults`` is either a compact spec string (``"straggler=0.2:1.8,..."``,
    see :meth:`repro.sim.faults.FaultModel.from_spec`) or a JSON object of
    :class:`~repro.sim.faults.FaultModel` fields.  Only its *shape* is
    checked here; the fault layer performs semantic validation and its
    errors are re-raised under the ``faults`` field path.
    """

    search: SearchRequest = field(default_factory=SearchRequest)
    faults: Any = ""
    scenarios: int = 16
    seed: int = 0
    objective: str = "p99"
    blend: float = 0.5
    layers: int = 8

    @classmethod
    def from_json(cls, body: Any) -> "RobustnessRequest":
        search = SearchRequest.from_json(body)
        body = _require_object(body)
        faults = body.get("faults", "")
        if not isinstance(faults, (str, Mapping)):
            raise ValidationError(
                "field 'faults' must be a spec string or a JSON object",
                "faults",
            )
        scenarios = _field(body, "scenarios", int, 16)
        if not 1 <= scenarios <= 1024:
            raise ValidationError(
                f"scenarios must be in [1, 1024], got {scenarios}", "scenarios"
            )
        seed = _field(body, "seed", int, 0)
        if seed < 0:
            raise ValidationError(f"seed must be >= 0, got {seed}", "seed")
        objective = _field(body, "objective", str, "p99")
        if objective not in OBJECTIVES:
            raise ValidationError(
                f"objective must be one of {OBJECTIVES}, got {objective!r}",
                "objective",
            )
        blend = _field(body, "blend", float, 0.5)
        if not 0.0 <= blend <= 1.0:
            raise ValidationError(
                f"blend must be in [0, 1], got {blend}", "blend"
            )
        layers = _field(body, "layers", int, 8)
        if layers < 0:
            raise ValidationError(f"layers must be >= 0, got {layers}", "layers")
        return cls(
            search=search,
            faults=dict(faults) if isinstance(faults, Mapping) else faults,
            scenarios=scenarios,
            seed=seed,
            objective=objective,
            blend=blend,
            layers=layers,
        )

    def to_json(self) -> Dict[str, Any]:
        faults = dict(self.faults) if isinstance(self.faults, Mapping) else self.faults
        return {
            **self.search.to_json(),
            "faults": faults,
            "scenarios": self.scenarios,
            "seed": self.seed,
            "objective": self.objective,
            "blend": self.blend,
            "layers": self.layers,
        }


# ----------------------------------------------------------------------
# result envelopes
# ----------------------------------------------------------------------


def stamp(kind: str, payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Wrap a result payload with its schema version and document kind."""
    return {"schema_version": SCHEMA_VERSION, "kind": kind, **payload}


def check_schema(payload: Any, kind: str) -> Mapping[str, Any]:
    """Validate a stamped result document before rehydration.

    Tolerates unstamped payloads (pre-``repro.api`` documents carry no
    ``schema_version``) but rejects version or kind mismatches.
    """
    if not isinstance(payload, Mapping):
        raise ValidationError(f"{kind} document must be a JSON object")
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported schema_version {version!r} for {kind}; this build "
            f"speaks {SCHEMA_VERSION}",
            "schema_version",
        )
    got = payload.get("kind", kind)
    if got != kind:
        raise ValidationError(
            f"expected a {kind!r} document, got {got!r}", "kind"
        )
    return payload


def plan_to_json(plan: Mapping[str, Any]) -> Dict[str, str]:
    """A plan as sorted ``{operator: str(spec)}`` — the serving wire shape."""
    return {name: str(spec) for name, spec in sorted(plan.items())}


def plan_from_json(payload: Mapping[str, str], n_bits: int) -> Dict[str, Any]:
    """Rehydrate a wire-shape plan into :class:`~repro.PartitionSpec` values."""
    from .core.spec import PartitionSpec

    plan: Dict[str, Any] = {}
    for name, text in payload.items():
        if text == "(replicated)":
            plan[name] = PartitionSpec((), n_bits)
        else:
            plan[name] = PartitionSpec.from_string(text, n_bits)
    return plan


def deprecated_alias(old: str, new: str) -> None:
    """Emit the one-release deprecation warning for a legacy entry point."""
    warnings.warn(
        f"{old} is deprecated and will be removed in the next release; "
        f"use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )
